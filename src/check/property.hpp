#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sim/random.hpp"

namespace lmas::check {

/// Seeded property/metamorphic test harness (no external dependencies).
///
/// A property is a function of a per-case RNG and a `size` scale that
/// returns nullopt on success or a counterexample description on failure.
/// The harness runs `cases` seeded cases, ramping size from min to max so
/// early cases are tiny; on the first failure it SHRINKS the case — same
/// seed, smallest size that still fails — and reports a repro command.
///
/// Reproduction contract: every entry point (the gtest `property`-label
/// suites and the `lmas_check` driver) honors three environment
/// variables, so a failure printed by CI is one copy-paste away from a
/// local single-case rerun:
///
///   LMAS_CHECK_SEED=0x<hex>  run exactly one case with this seed
///   LMAS_CHECK_SIZE=<n>      ... at this size (default: suite max)
///   LMAS_CHECK_CASES=<n>     override the number of cases per suite

/// A falsified property after shrinking: the (seed, size) pair that
/// reproduces it plus the property's counterexample message.
struct Failure {
  std::string suite;
  std::uint64_t seed = 0;
  unsigned size = 0;
  std::string message;

  /// Copy-pasteable single-case repro command.
  [[nodiscard]] std::string repro() const;

  /// Multi-line report: suite, seed/size, message, repro.
  [[nodiscard]] std::string describe() const;
};

struct Options {
  std::string suite;        ///< name used in reports and repro commands
  std::size_t cases = 100;  ///< seeded cases per run
  std::uint64_t seed = 0;   ///< base seed; per-case seeds derive from it
  unsigned min_size = 1;    ///< smallest structure scale
  unsigned max_size = 16;   ///< largest scale (ramped across cases)
};

using Property =
    std::function<std::optional<std::string>(sim::Rng&, unsigned size)>;

/// Run the property over seeded cases; nullopt means it held everywhere.
/// Deterministic: same Options always replay the same case sequence.
[[nodiscard]] std::optional<Failure> forall(Options opt,
                                            const Property& prop);

}  // namespace lmas::check

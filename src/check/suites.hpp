#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "check/property.hpp"

namespace lmas::check {

/// The conformance property suites. Each runs `cases` seeded cases through
/// the forall() harness and returns the shrunk counterexample on failure.
///
/// The suites encode the model's load-management contracts (Sections 3
/// and 4 of the paper) as machine-checkable invariants:
///
///  - permutation:  sorted output is an exact multiset permutation of the
///                  input (external mergesort layer).
///  - packet_order: the set contract — routing is free to scatter packets
///                  across replicated instances, but records within a
///                  packet stay together and per-(producer, subset)
///                  sequence numbers arrive in order at every instance,
///                  under every RoutingPolicy.
///  - conservation: DSM-Sort neither loses nor invents records: counts and
///                  key checksums are conserved through distribute, sort
///                  and merge, for every machine shape / αβγ split /
///                  workload / router sampled.
///  - sr_balance:   SR routing's imbalance bound — randomized cycling
///                  sends each subset's packets to every instance either
///                  floor(n_s/k) or ceil(n_s/k) times.
///  - predictor:    the declared-cost model's predict_pass1 stays within a
///                  declared multiplicative tolerance of the emulated
///                  pass-1 time in the uniform-key regime it models.
///  - digest:       same seed + same config reproduce bit-identical
///                  execution digests and metric fingerprints; a different
///                  seed produces a different digest.
///  - fault-conservation: DSM-Sort under every generated FaultPlan (ASU
///                  slowdowns, crash/recover windows, link delays) still
///                  conserves records and checksums, keeps runs sorted,
///                  moves the digest, and replays deterministically.
///  - fault-routing: the degraded-mode delivery contract at the routing
///                  layer — no packet is lost to a crashed replica
///                  (retry-with-timeout re-routes it), packets stay
///                  intact, SR balance survives crash-free perturbation,
///                  and faulted runs replay bit-identically.
///  - lm-switch:    router hot-swap neutrality — promoting/demoting a
///                  SwitchableRouter at random instants mid-run preserves
///                  the full set contract (per-(producer, subset) seq
///                  order at every instance, packet integrity, no loss)
///                  and replays bit-identically.
///  - lm-migration: functor migration conservation — re-pinning instances
///                  to random nodes at random instants may let packets
///                  overtake (the ordering half of the contract is
///                  deliberately forfeit), but the delivered
///                  (producer, subset, seq) multiset must equal the
///                  emitted one, records stay intact within packets, and
///                  the run replays bit-identically.
///  - histogram:    the telemetry pipeline's accuracy contract — a
///                  LatencyHistogram's streamed nearest-rank quantiles
///                  stay within the documented per-bucket relative error
///                  of exact sorted-sample quantiles, and merging shard
///                  histograms is order- and grouping-independent.
///  - tenant-conservation: multi-tenant serving loses no work — every
///                  admitted job completes and each tenant's record
///                  counts are conserved end to end, under concurrent
///                  mixed-shape jobs, admission waits, fair-share
///                  charging, and cross-job load management (migration
///                  included).
///  - tenant-arrival: the seeded open-arrival determinism contract —
///                  same config reproduces the identical schedule,
///                  fingerprint, and execution digest; every arrival is
///                  well-formed against its tenant's mix; a different
///                  seed moves the fingerprint.
///  - sharded-digest: the ShardedEngine determinism contract — a random
///                  PHOLD-style topology produces bit-identical canonical
///                  digests and event counts at 1, 2 and 4 shards, and a
///                  zero-lookahead topology is rejected at construction
///                  instead of deadlocking the window loop.
///  - topology-conservation: placement-freedom of the set contract — the
///                  same DSM-Sort conserves records, checksums, subset
///                  boundaries and run-sortedness whether it runs on the
///                  flat machine or a random hierarchical TopologySpec
///                  (racks, oversubscribed spine, heterogeneous speeds).
///  - pod-balance:  balance contracts of the scale-out routers on
///                  (possibly hierarchical) target sets: SR's floor/ceil
///                  cycle bound aggregated per rack, power-of-d with a
///                  full sample is exact least-loaded (spread ≤ 1),
///                  power-of-two stays within a generous margin of the
///                  mean-field log-log gap, and power-of-one ignores
///                  advertised load entirely.
///  - migration-economy: the budgeted placer's safety contract — a
///                  managed DSM-Sort with random per-tick move/byte
///                  budgets (and, half the time, a random fault plan
///                  with crash windows underneath) still conserves
///                  records, checksums and subset boundaries; every
///                  journaled placer tick respects both budgets
///                  (moves per tick ≤ budget, declared bytes per tick
///                  ≤ budget); each decision's declared bytes cover at
///                  least the migration overhead; and the managed run
///                  replays bit-identically.
std::optional<Failure> suite_permutation(std::size_t cases,
                                         std::uint64_t seed);
std::optional<Failure> suite_packet_order(std::size_t cases,
                                          std::uint64_t seed);
std::optional<Failure> suite_conservation(std::size_t cases,
                                          std::uint64_t seed);
std::optional<Failure> suite_sr_balance(std::size_t cases,
                                        std::uint64_t seed);
std::optional<Failure> suite_predictor(std::size_t cases,
                                       std::uint64_t seed);
std::optional<Failure> suite_digest(std::size_t cases, std::uint64_t seed);
std::optional<Failure> suite_fault_conservation(std::size_t cases,
                                                std::uint64_t seed);
std::optional<Failure> suite_fault_routing(std::size_t cases,
                                           std::uint64_t seed);
std::optional<Failure> suite_lm_switch(std::size_t cases,
                                       std::uint64_t seed);
std::optional<Failure> suite_lm_migration(std::size_t cases,
                                          std::uint64_t seed);
std::optional<Failure> suite_histogram(std::size_t cases,
                                       std::uint64_t seed);
std::optional<Failure> suite_tenant_conservation(std::size_t cases,
                                                 std::uint64_t seed);
std::optional<Failure> suite_tenant_arrival(std::size_t cases,
                                            std::uint64_t seed);
std::optional<Failure> suite_sharded_digest(std::size_t cases,
                                            std::uint64_t seed);
std::optional<Failure> suite_topology_conservation(std::size_t cases,
                                                   std::uint64_t seed);
std::optional<Failure> suite_pod_balance(std::size_t cases,
                                         std::uint64_t seed);
std::optional<Failure> suite_migration_economy(std::size_t cases,
                                               std::uint64_t seed);

struct SuiteInfo {
  std::string_view name;
  std::optional<Failure> (*fn)(std::size_t cases, std::uint64_t seed);
  std::size_t default_cases;
};

/// Registry for the lmas_check driver and the gtest property binaries.
[[nodiscard]] const std::vector<SuiteInfo>& all_suites();

}  // namespace lmas::check

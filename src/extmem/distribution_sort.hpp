#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "extmem/distribute.hpp"
#include "extmem/sort.hpp"
#include "extmem/stream.hpp"
#include "sim/random.hpp"

namespace lmas::em {

struct DistributionSortStats {
  std::size_t items = 0;
  std::size_t buckets = 0;
  std::size_t sample_size = 0;
  std::size_t max_bucket = 0;
  std::size_t recursion_depth = 0;
};

struct DistributionSortOptions {
  /// Memory for in-place bucket sorting (the model's M).
  std::size_t memory_bytes = 64 << 20;
  /// Distribution order per pass (bounded by buffer space in the model).
  std::size_t fan_out = 64;
  /// Sample size per bucket decision (larger = better balance).
  std::size_t sample_per_bucket = 32;
  std::uint64_t seed = 1;
  BteFactory scratch = memory_bte_factory();
};

/// Distribution sort with sampled splitters — the dual of mergesort and
/// the algorithm family of Vitter & Hutchinson's randomized-cycling
/// distribution sort (the paper's reference [35], whence SR routing).
/// The input is partitioned into fan_out buckets by quantile splitters
/// from a random sample; buckets that fit in memory are sorted directly,
/// larger ones recurse. Output is the concatenation in bucket order.
template <FixedSizeRecord T, typename KeyFn = KeyOf>
void distribution_sort(Stream<T>& in, Stream<T>& out,
                       const DistributionSortOptions& opt = {},
                       KeyFn key_of = {},
                       DistributionSortStats* stats = nullptr) {
  DistributionSortStats local;
  DistributionSortStats& st = stats ? *stats : local;
  st = {};
  st.buckets = opt.fan_out;

  out.clear();
  sim::Rng rng(opt.seed);

  // Recursive worker over a stream segment held as its own stream.
  const std::size_t memory_records =
      std::max<std::size_t>(16, opt.memory_bytes / sizeof(T));

  std::function<void(Stream<T>&, std::size_t)> sort_bucket =
      [&](Stream<T>& bucket, std::size_t depth) {
        st.recursion_depth = std::max(st.recursion_depth, depth);
        bucket.rewind();
        if (bucket.size() <= memory_records) {
          std::vector<T> buf(bucket.size());
          bucket.read_bulk(buf);
          std::sort(buf.begin(), buf.end(),
                    [&](const T& a, const T& b) {
                      return key_of(a) < key_of(b);
                    });
          out.append(std::span<const T>(buf));
          return;
        }

        // Sample -> splitters.
        const std::size_t want =
            std::min(bucket.size(), opt.fan_out * opt.sample_per_bucket);
        std::vector<std::uint32_t> sample;
        sample.reserve(want);
        const std::size_t stride =
            std::max<std::size_t>(1, bucket.size() / want);
        std::size_t idx = 0;
        bucket.rewind();
        while (auto r = bucket.read()) {
          if (idx++ % stride == 0) {
            sample.push_back(std::uint32_t(key_of(*r)));
          }
        }
        std::sort(sample.begin(), sample.end());
        std::vector<std::uint32_t> splitters;
        for (std::size_t i = 1; i < opt.fan_out; ++i) {
          splitters.push_back(
              sample[std::min(sample.size() - 1,
                              i * sample.size() / opt.fan_out)]);
        }

        // Distribute into sub-buckets. Keys equal to a splitter go low,
        // so a bucket of all-equal keys cannot recurse forever: the
        // all-equal case lands entirely in bucket 0 and is then detected
        // and emitted directly.
        bucket.rewind();
        auto subs = distribute(
            bucket, opt.fan_out,
            [&](const T& r) {
              const auto k = std::uint32_t(key_of(r));
              return std::size_t(std::lower_bound(splitters.begin(),
                                                  splitters.end(), k) -
                                 splitters.begin());
            },
            opt.scratch);
        st.sample_size += sample.size();

        for (auto& sub : subs) {
          if (sub->empty()) continue;
          st.max_bucket = std::max(st.max_bucket, sub->size());
          if (sub->size() == bucket.size()) {
            // Did not shrink (all keys equal): already "sorted" by key.
            sub->rewind();
            while (auto r = sub->read()) out.push_back(*r);
            continue;
          }
          sort_bucket(*sub, depth + 1);
        }
      };

  in.rewind();
  st.items = in.size();
  sort_bucket(in, 0);
  out.rewind();
}

}  // namespace lmas::em

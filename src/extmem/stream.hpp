#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "extmem/bte.hpp"
#include "extmem/record.hpp"

namespace lmas::em {

/// Factory for scratch storage used by sort/merge/distribute intermediates.
using BteFactory = std::function<std::unique_ptr<Bte>()>;

inline BteFactory memory_bte_factory() {
  return [] { return make_memory_bte(); };
}
inline BteFactory temp_file_bte_factory() {
  return [] { return make_temp_file_bte(); };
}

/// Sequential stream of fixed-size records over a BTE (TPIE's central
/// abstraction). Reads and writes go through a block buffer so the BTE only
/// sees block-granularity transfers — the unit the I/O model counts.
///
/// The stream keeps one cursor. Typical life cycle: write a phase's output
/// sequentially, `rewind()`, then read it back as the next phase's input.
/// Interleaved read/write at arbitrary positions is supported but flushes
/// the buffer on each mode switch.
template <FixedSizeRecord T>
class Stream {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Stream(std::unique_ptr<Bte> bte = make_memory_bte(),
                  std::size_t block_bytes = kDefaultBlockBytes)
      : bte_(std::move(bte)),
        records_per_block_(block_bytes < sizeof(T) ? 1
                                                   : block_bytes / sizeof(T)),
        buffer_(records_per_block_) {
    assert(bte_);
    size_ = bte_->size() / sizeof(T);
  }

  Stream(Stream&&) noexcept = default;
  Stream& operator=(Stream&&) noexcept = default;

  ~Stream() {
    if (bte_) flush();
  }

  /// Number of records in the stream.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Current cursor position (record index).
  [[nodiscard]] std::size_t tell() const noexcept { return pos_; }

  /// True when the cursor is at or past the last record.
  [[nodiscard]] bool eof() const noexcept { return pos_ >= size_; }

  void seek(std::size_t record_index) {
    assert(record_index <= size_);
    pos_ = record_index;
  }
  void rewind() { pos_ = 0; }

  /// Append one record at the end (common write pattern).
  void push_back(const T& r) {
    pos_ = size_;
    write(r);
  }

  /// Write at the cursor, advancing it; extends the stream at the end.
  void write(const T& r) {
    const std::size_t block = pos_ / records_per_block_;
    ensure_block(block, /*for_write=*/true);
    buffer_[pos_ % records_per_block_] = r;
    dirty_ = true;
    ++pos_;
    if (pos_ > size_) size_ = pos_;
  }

  /// Read the record at the cursor, advancing it; nullopt at end.
  std::optional<T> read() {
    if (pos_ >= size_) return std::nullopt;
    const std::size_t block = pos_ / records_per_block_;
    ensure_block(block, /*for_write=*/false);
    return buffer_[pos_++ % records_per_block_];
  }

  /// Peek without advancing.
  std::optional<T> peek() {
    auto r = read();
    if (r) --pos_;
    return r;
  }

  /// Bulk append (amortizes per-record overhead in run writers).
  void append(std::span<const T> items) {
    for (const T& r : items) push_back(r);
  }

  /// Read up to `out.size()` records; returns how many were read.
  std::size_t read_bulk(std::span<T> out) {
    std::size_t got = 0;
    while (got < out.size()) {
      auto r = read();
      if (!r) break;
      out[got++] = *r;
    }
    return got;
  }

  /// Drop all contents and reset the cursor.
  void clear() {
    flush();
    bte_->truncate(0);
    size_ = 0;
    pos_ = 0;
    loaded_block_ = kNoBlock;
  }

  /// Shrink to `n` records.
  void truncate(std::size_t n) {
    if (n >= size_) return;
    flush();
    bte_->truncate(std::uint64_t(n) * sizeof(T));
    size_ = n;
    if (pos_ > n) pos_ = n;
    loaded_block_ = kNoBlock;
  }

  /// Write back any dirty buffered block.
  void flush() {
    if (dirty_ && loaded_block_ != kNoBlock) {
      const std::uint64_t off =
          std::uint64_t(loaded_block_) * records_per_block_ * sizeof(T);
      const std::size_t nrec = block_record_count(loaded_block_);
      bte_->write(off, std::as_bytes(std::span(buffer_.data(), nrec)));
    }
    dirty_ = false;
  }

  [[nodiscard]] const BteStats& io_stats() const {
    return bte_->stats();
  }
  [[nodiscard]] std::size_t records_per_block() const noexcept {
    return records_per_block_;
  }

 private:
  static constexpr std::size_t kNoBlock = std::size_t(-1);

  [[nodiscard]] std::size_t block_record_count(std::size_t block) const {
    const std::size_t first = block * records_per_block_;
    const std::size_t live = size_ > first ? size_ - first : 0;
    return live < records_per_block_ ? live : records_per_block_;
  }

  void ensure_block(std::size_t block, bool for_write) {
    if (block == loaded_block_) return;
    flush();
    const std::size_t nrec = block_record_count(block);
    if (nrec > 0) {
      const std::uint64_t off =
          std::uint64_t(block) * records_per_block_ * sizeof(T);
      bte_->read(off, std::as_writable_bytes(std::span(buffer_.data(), nrec)));
    } else {
      assert(for_write && "reading an empty block");
      (void)for_write;
    }
    loaded_block_ = block;
  }

  std::unique_ptr<Bte> bte_;
  std::size_t records_per_block_;
  std::vector<T> buffer_;
  std::size_t loaded_block_ = kNoBlock;
  bool dirty_ = false;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace lmas::em

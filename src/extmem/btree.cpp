#include "extmem/btree.hpp"

#include <algorithm>

namespace lmas::em {

void BTree::split_child(Node& parent, std::uint32_t parent_id,
                        std::size_t ci) {
  Node child;
  const std::uint32_t child_id = parent.slots[ci];
  read_node(child_id, child);

  Node right;
  right.is_leaf = child.is_leaf;
  const std::uint32_t right_id = alloc_node();

  const std::size_t mid = child.count / 2;
  std::uint32_t separator;
  if (child.is_leaf) {
    // B+ leaf split: upper half moves right; separator is the right
    // node's first key (keys stay in the leaves).
    right.count = std::uint16_t(child.count - mid);
    for (std::size_t i = 0; i < right.count; ++i) {
      right.keys[i] = child.keys[mid + i];
      right.slots[i] = child.slots[mid + i];
    }
    separator = right.keys[0];
    right.next_leaf = child.next_leaf;
    child.next_leaf = right_id;
    child.count = std::uint16_t(mid);
  } else {
    // Internal split: the middle key moves up.
    separator = child.keys[mid];
    right.count = std::uint16_t(child.count - mid - 1);
    for (std::size_t i = 0; i < right.count; ++i) {
      right.keys[i] = child.keys[mid + 1 + i];
      right.slots[i] = child.slots[mid + 1 + i];
    }
    right.slots[right.count] = child.slots[child.count];
    child.count = std::uint16_t(mid);
  }

  // Insert separator + right child into the parent at position ci.
  for (std::size_t i = parent.count; i > ci; --i) {
    parent.keys[i] = parent.keys[i - 1];
    parent.slots[i + 1] = parent.slots[i];
  }
  parent.keys[ci] = separator;
  parent.slots[ci + 1] = right_id;
  parent.count = std::uint16_t(parent.count + 1);

  write_node(child_id, child);
  write_node(right_id, right);
  write_node(parent_id, parent);
}

void BTree::insert(std::uint32_t key, std::uint32_t value) {
  Node root;
  read_node(root_, root);
  if (root.count >= max_keys_) {
    // Grow: fresh root with the old root as its only child.
    Node new_root;
    new_root.is_leaf = 0;
    new_root.slots[0] = root_;
    const std::uint32_t new_root_id = alloc_node();
    write_node(new_root_id, new_root);
    root_ = new_root_id;
    ++height_;
    split_child(new_root, new_root_id, 0);
    root = new_root;
  }

  // Preemptive-split descent: every node we enter has room.
  std::uint32_t id = root_;
  Node node = root;
  while (!node.is_leaf) {
    std::size_t ci = child_index(node, key);
    Node child;
    read_node(node.slots[ci], child);
    if (child.count >= max_keys_) {
      split_child(node, id, ci);
      ci = child_index(node, key);
      read_node(node.slots[ci], child);
    }
    id = node.slots[ci];
    node = child;
  }

  // Leaf insert (or overwrite).
  std::size_t pos = 0;
  while (pos < node.count && node.keys[pos] < key) ++pos;
  if (pos < node.count && node.keys[pos] == key) {
    node.slots[pos] = value;
    write_node(id, node);
    return;
  }
  for (std::size_t i = node.count; i > pos; --i) {
    node.keys[i] = node.keys[i - 1];
    node.slots[i] = node.slots[i - 1];
  }
  node.keys[pos] = key;
  node.slots[pos] = value;
  node.count = std::uint16_t(node.count + 1);
  write_node(id, node);
  ++size_;
}

std::optional<std::uint32_t> BTree::find(std::uint32_t key) {
  Node node;
  read_node(root_, node);
  while (!node.is_leaf) {
    read_node(node.slots[child_index(node, key)], node);
  }
  for (std::size_t i = 0; i < node.count; ++i) {
    if (node.keys[i] == key) return node.slots[i];
  }
  return std::nullopt;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> BTree::range(
    std::uint32_t lo, std::uint32_t hi) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  Node node;
  std::uint32_t id = root_;
  read_node(id, node);
  while (!node.is_leaf) {
    id = node.slots[child_index(node, lo)];
    read_node(id, node);
  }
  while (true) {
    for (std::size_t i = 0; i < node.count; ++i) {
      if (node.keys[i] < lo) continue;
      if (node.keys[i] > hi) return out;
      out.emplace_back(node.keys[i], node.slots[i]);
    }
    if (node.next_leaf == kNil) return out;
    read_node(node.next_leaf, node);
  }
}

BTree BTree::bulk_load(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& sorted,
    std::unique_ptr<Bte> storage, std::size_t max_keys) {
  BTree t(std::move(storage), max_keys);
  if (sorted.empty()) return t;

  // Pack leaves at ~90% fill, chained left to right.
  const std::size_t per_leaf =
      std::max<std::size_t>(2, t.max_keys_ * 9 / 10);
  struct Entry {
    std::uint32_t first_key;
    std::uint32_t id;
  };
  std::vector<Entry> level;
  std::uint32_t prev_leaf = kNil;
  // Reuse the preallocated empty root as the very first leaf.
  for (std::size_t off = 0; off < sorted.size(); off += per_leaf) {
    const std::size_t n = std::min(per_leaf, sorted.size() - off);
    Node leaf;
    leaf.is_leaf = 1;
    leaf.count = std::uint16_t(n);
    for (std::size_t i = 0; i < n; ++i) {
      leaf.keys[i] = sorted[off + i].first;
      leaf.slots[i] = sorted[off + i].second;
    }
    const std::uint32_t id = off == 0 ? t.root_ : t.alloc_node();
    if (prev_leaf != kNil) {
      Node prev;
      t.read_node(prev_leaf, prev);
      prev.next_leaf = id;
      t.write_node(prev_leaf, prev);
    }
    t.write_node(id, leaf);
    prev_leaf = id;
    level.push_back({leaf.keys[0], id});
    t.size_ += n;
  }

  // Internal levels: child i sits left of key i (= first key of child
  // i+1's subtree).
  const std::size_t per_node =
      std::max<std::size_t>(2, t.max_keys_ * 9 / 10);
  while (level.size() > 1) {
    std::vector<Entry> up;
    for (std::size_t off = 0; off < level.size(); off += per_node + 1) {
      const std::size_t n = std::min(per_node + 1, level.size() - off);
      Node internal;
      internal.is_leaf = 0;
      internal.count = std::uint16_t(n - 1);
      for (std::size_t i = 0; i < n; ++i) {
        internal.slots[i] = level[off + i].id;
        if (i > 0) internal.keys[i - 1] = level[off + i].first_key;
      }
      const std::uint32_t id = t.alloc_node();
      t.write_node(id, internal);
      up.push_back({level[off].first_key, id});
    }
    level = std::move(up);
    ++t.height_;
  }
  t.root_ = level.front().id;
  return t;
}

bool BTree::validate() {
  std::size_t leaves_seen = 0;
  if (!validate_node(root_, 0, 0, false, false, 0, SIZE_MAX, leaves_seen)) {
    return false;
  }
  // Leaf chain must enumerate exactly size_ keys in order.
  Node node;
  read_node(root_, node);
  std::uint32_t id = root_;
  while (!node.is_leaf) {
    id = node.slots[0];
    read_node(id, node);
  }
  std::size_t chained = 0;
  bool first = true;
  std::uint32_t prev = 0;
  while (true) {
    for (std::size_t i = 0; i < node.count; ++i) {
      if (!first && node.keys[i] <= prev) return false;
      prev = node.keys[i];
      first = false;
      ++chained;
    }
    if (node.next_leaf == kNil) break;
    read_node(node.next_leaf, node);
  }
  return chained == size_;
}

bool BTree::validate_node(std::uint32_t id, std::uint32_t lo,
                          std::uint32_t hi, bool has_lo, bool has_hi,
                          std::size_t depth, std::size_t leaf_depth,
                          std::size_t& leaves_seen) {
  static thread_local std::size_t expected_leaf_depth = SIZE_MAX;
  if (depth == 0) expected_leaf_depth = SIZE_MAX;
  (void)leaf_depth;

  Node n;
  read_node(id, n);
  for (std::size_t i = 0; i + 1 < n.count; ++i) {
    if (n.keys[i] >= n.keys[i + 1]) return false;
  }
  for (std::size_t i = 0; i < n.count; ++i) {
    if (has_lo && n.keys[i] < lo) return false;
    if (has_hi && n.keys[i] >= hi) return false;
  }
  if (n.is_leaf) {
    if (expected_leaf_depth == SIZE_MAX) expected_leaf_depth = depth;
    if (depth != expected_leaf_depth) return false;  // balanced
    ++leaves_seen;
    return true;
  }
  for (std::size_t i = 0; i <= n.count; ++i) {
    const bool clo = i > 0;
    const bool chi = i < n.count;
    if (!validate_node(n.slots[i], clo ? n.keys[i - 1] : lo,
                       chi ? n.keys[i] : hi, clo || has_lo, chi || has_hi,
                       depth + 1, leaf_depth, leaves_seen)) {
      return false;
    }
  }
  return true;
}

}  // namespace lmas::em

#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "extmem/merge.hpp"
#include "extmem/stream.hpp"

namespace lmas::em {

/// External-memory priority queue in the buffered-heap style: an in-memory
/// min-heap bounded by a memory budget, with overflow spilled as sorted
/// runs to scratch streams. Pop takes the minimum of the heap top and the
/// run heads; runs are compacted by k-way merge when too numerous.
///
/// This is the enabling structure for time-forward processing (Chiang et
/// al.), which TerraFlow's watershed step relies on: a cell sends values
/// "forward in time" to cells processed later in the elevation order.
template <FixedSizeRecord T, typename Less = std::less<T>>
class ExternalPq {
 public:
  explicit ExternalPq(std::size_t max_hot_items = 1 << 16,
                      BteFactory scratch = memory_bte_factory(),
                      Less less = {})
      : max_hot_(std::max<std::size_t>(4, max_hot_items)),
        scratch_(std::move(scratch)),
        less_(less),
        greater_([this](const T& a, const T& b) { return less_(b, a); }) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t spill_count() const noexcept { return spills_; }
  [[nodiscard]] std::size_t run_count() const noexcept {
    return runs_.size();
  }

  void push(const T& v) {
    hot_.push_back(v);
    std::push_heap(hot_.begin(), hot_.end(), greater_);
    ++size_;
    if (hot_.size() > max_hot_) spill();
  }

  /// Smallest element without removing it.
  [[nodiscard]] std::optional<T> peek() const {
    const T* best = nullptr;
    if (!hot_.empty()) best = &hot_.front();
    for (const auto& run : runs_) {
      if (run.head && (!best || less_(*run.head, *best))) {
        best = &*run.head;
      }
    }
    return best ? std::optional<T>(*best) : std::nullopt;
  }

  std::optional<T> pop() {
    // Find the minimum among the hot heap top and all run heads.
    int best_run = -1;
    const T* best = hot_.empty() ? nullptr : &hot_.front();
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      if (runs_[i].head && (!best || less_(*runs_[i].head, *best))) {
        best = &*runs_[i].head;
        best_run = int(i);
      }
    }
    if (!best) return std::nullopt;
    T out;
    if (best_run < 0) {
      std::pop_heap(hot_.begin(), hot_.end(), greater_);
      out = hot_.back();
      hot_.pop_back();
    } else {
      Run& run = runs_[std::size_t(best_run)];
      out = *run.head;
      run.head = run.stream->read();
      if (!run.head) {
        runs_.erase(runs_.begin() + best_run);
      }
    }
    --size_;
    return out;
  }

 private:
  struct Run {
    std::unique_ptr<Stream<T>> stream;
    std::optional<T> head;
  };

  void spill() {
    ++spills_;
    // Sort the hot set, keep the smallest half hot, spill the larger half
    // as an ascending run (minimizes how often the run heads win pops).
    std::sort(hot_.begin(), hot_.end(), less_);
    const std::size_t keep = hot_.size() / 2;
    auto run_stream = std::make_unique<Stream<T>>(scratch_());
    run_stream->append(
        std::span<const T>(hot_.data() + keep, hot_.size() - keep));
    run_stream->rewind();
    hot_.resize(keep);
    std::make_heap(hot_.begin(), hot_.end(), greater_);
    Run run{std::move(run_stream), std::nullopt};
    run.head = run.stream->read();
    if (run.head) runs_.push_back(std::move(run));
    if (runs_.size() > kMaxRuns) compact();
  }

  /// Merge all spill runs into one (keeps the head scan cheap).
  void compact() {
    std::vector<typename LoserTree<T, Less>::Source> sources;
    sources.reserve(runs_.size());
    // Re-inject cached heads ahead of their streams.
    for (auto& run : runs_) {
      sources.push_back(
          [head = run.head, s = run.stream.get()]() mutable {
            if (head) {
              auto out = head;
              head.reset();
              return out;
            }
            return s->read();
          });
    }
    LoserTree<T, Less> tree(std::move(sources), less_);
    auto merged = std::make_unique<Stream<T>>(scratch_());
    while (auto r = tree.next()) merged->push_back(*r);
    merged->rewind();
    runs_.clear();
    Run run{std::move(merged), std::nullopt};
    run.head = run.stream->read();
    if (run.head) runs_.push_back(std::move(run));
  }

  static constexpr std::size_t kMaxRuns = 24;

  std::size_t max_hot_;
  BteFactory scratch_;
  Less less_;
  std::function<bool(const T&, const T&)> greater_;
  std::vector<T> hot_;  // min-heap under greater_
  std::vector<Run> runs_;
  std::size_t size_ = 0;
  std::size_t spills_ = 0;
};

}  // namespace lmas::em

#pragma once

#include <cstddef>

#include "extmem/stream.hpp"

namespace lmas::em {

/// Streaming primitives in TPIE's scan style: each consumes its input
/// sequentially from the current cursor and appends to the output. These
/// are the building blocks the paper's functors wrap.

/// Apply `fn(const T&)` to every record from the cursor to the end.
template <FixedSizeRecord T, typename Fn>
std::size_t for_each(Stream<T>& in, Fn&& fn) {
  std::size_t n = 0;
  while (auto r = in.read()) {
    fn(*r);
    ++n;
  }
  return n;
}

/// out[i] = fn(in[i]); returns records processed.
template <FixedSizeRecord T, FixedSizeRecord U, typename Fn>
std::size_t transform(Stream<T>& in, Stream<U>& out, Fn&& fn) {
  std::size_t n = 0;
  while (auto r = in.read()) {
    out.push_back(fn(*r));
    ++n;
  }
  return n;
}

/// Copy records satisfying `pred` to `out`; returns records kept.
template <FixedSizeRecord T, typename Pred>
std::size_t filter(Stream<T>& in, Stream<T>& out, Pred&& pred) {
  std::size_t kept = 0;
  while (auto r = in.read()) {
    if (pred(*r)) {
      out.push_back(*r);
      ++kept;
    }
  }
  return kept;
}

/// Left fold over the remaining records.
template <FixedSizeRecord T, typename Acc, typename Fn>
Acc reduce(Stream<T>& in, Acc init, Fn&& fn) {
  Acc acc = std::move(init);
  while (auto r = in.read()) acc = fn(std::move(acc), *r);
  return acc;
}

/// True if the remaining records are sorted under `less`.
template <FixedSizeRecord T, typename Less = std::less<T>>
bool is_sorted(Stream<T>& in, Less less = {}) {
  auto prev = in.read();
  if (!prev) return true;
  while (auto cur = in.read()) {
    if (less(*cur, *prev)) return false;
    prev = cur;
  }
  return true;
}

}  // namespace lmas::em

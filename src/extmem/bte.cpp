#include "extmem/bte.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

namespace lmas::em {

namespace {

class MemoryBte final : public Bte {
 public:
  [[nodiscard]] std::uint64_t size() const override { return data_.size(); }

  void read(std::uint64_t offset, std::span<std::byte> out) override {
    if (offset + out.size() > data_.size()) {
      throw std::out_of_range("MemoryBte::read past end");
    }
    std::memcpy(out.data(), data_.data() + offset, out.size());
    stats_.bytes_read += out.size();
    ++stats_.read_ops;
  }

  void write(std::uint64_t offset, std::span<const std::byte> in) override {
    if (offset + in.size() > data_.size()) {
      data_.resize(offset + in.size());
    }
    std::memcpy(data_.data() + offset, in.data(), in.size());
    stats_.bytes_written += in.size();
    ++stats_.write_ops;
  }

  void truncate(std::uint64_t new_size) override {
    if (new_size < data_.size()) data_.resize(new_size);
  }

 private:
  std::vector<std::byte> data_;
};

class FileBte final : public Bte {
 public:
  explicit FileBte(int fd) : fd_(fd) {
    if (fd_ < 0) {
      throw std::system_error(errno, std::generic_category(),
                              "FileBte: open failed");
    }
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    size_ = end < 0 ? 0 : std::uint64_t(end);
  }

  ~FileBte() override {
    if (fd_ >= 0) ::close(fd_);
  }

  FileBte(const FileBte&) = delete;
  FileBte& operator=(const FileBte&) = delete;

  [[nodiscard]] std::uint64_t size() const override { return size_; }

  void read(std::uint64_t offset, std::span<std::byte> out) override {
    if (offset + out.size() > size_) {
      throw std::out_of_range("FileBte::read past end");
    }
    full_pread(out.data(), out.size(), offset);
    stats_.bytes_read += out.size();
    ++stats_.read_ops;
  }

  void write(std::uint64_t offset, std::span<const std::byte> in) override {
    full_pwrite(in.data(), in.size(), offset);
    if (offset + in.size() > size_) size_ = offset + in.size();
    stats_.bytes_written += in.size();
    ++stats_.write_ops;
  }

  void truncate(std::uint64_t new_size) override {
    if (new_size < size_) {
      if (::ftruncate(fd_, off_t(new_size)) != 0) {
        throw std::system_error(errno, std::generic_category(),
                                "FileBte: ftruncate failed");
      }
      size_ = new_size;
    }
  }

 private:
  void full_pread(std::byte* dst, std::size_t n, std::uint64_t off) const {
    while (n > 0) {
      const ssize_t got = ::pread(fd_, dst, n, off_t(off));
      if (got <= 0) {
        throw std::system_error(errno, std::generic_category(),
                                "FileBte: pread failed");
      }
      dst += got;
      n -= std::size_t(got);
      off += std::uint64_t(got);
    }
  }

  void full_pwrite(const std::byte* src, std::size_t n, std::uint64_t off) {
    while (n > 0) {
      const ssize_t put = ::pwrite(fd_, src, n, off_t(off));
      if (put <= 0) {
        throw std::system_error(errno, std::generic_category(),
                                "FileBte: pwrite failed");
      }
      src += put;
      n -= std::size_t(put);
      off += std::uint64_t(put);
    }
  }

  int fd_;
  std::uint64_t size_;
};

}  // namespace

std::unique_ptr<Bte> make_memory_bte() { return std::make_unique<MemoryBte>(); }

std::unique_ptr<Bte> make_file_bte(const std::string& path,
                                   bool truncate_existing) {
  int flags = O_RDWR | O_CREAT;
  if (truncate_existing) flags |= O_TRUNC;
  return std::make_unique<FileBte>(::open(path.c_str(), flags, 0644));
}

std::unique_ptr<Bte> make_temp_file_bte() {
  char tmpl[] = "/tmp/lmas_bte_XXXXXX";
  const int fd = ::mkstemp(tmpl);
  if (fd >= 0) ::unlink(tmpl);
  return std::make_unique<FileBte>(fd);
}

}  // namespace lmas::em

#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "extmem/bte.hpp"

namespace lmas::em {

/// External-memory B+-tree over 4-byte keys and values, nodes stored as
/// fixed-size blocks in a BTE. This is the classic two-level-splittable
/// index structure Section 4.2 generalizes to distributed settings: the
/// upper levels can stay on a host while leaf ranges ship to ASUs, and
/// lower-level maintenance can run as ASU batch work.
///
/// Map semantics: keys are unique; inserting an existing key overwrites
/// its value. Leaves are chained for range scans. No deletion (the
/// paper's workloads are append/scan/search; see DESIGN.md).
class BTree {
 public:
  /// Maximum keys per node (compile-time node layout; the constructor
  /// can lower the effective fan-out for testing deep trees).
  static constexpr std::size_t kMaxKeys = 64;

  explicit BTree(std::unique_ptr<Bte> storage = make_memory_bte(),
                 std::size_t max_keys = kMaxKeys)
      : bte_(std::move(storage)),
        max_keys_(max_keys < 4 ? 4 : (max_keys > kMaxKeys ? kMaxKeys
                                                          : max_keys)) {
    root_ = alloc_node();
    Node root;
    root.is_leaf = 1;
    write_node(root_, root);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
  [[nodiscard]] const BteStats& io_stats() const noexcept {
    return bte_->stats();
  }

  /// Insert or overwrite.
  void insert(std::uint32_t key, std::uint32_t value);

  /// Value for `key`, if present.
  [[nodiscard]] std::optional<std::uint32_t> find(std::uint32_t key);

  /// All (key, value) pairs with lo <= key <= hi, in key order.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> range(
      std::uint32_t lo, std::uint32_t hi);

  /// Build from key-sorted unique pairs (bottom-up packing — the batch
  /// construction path, analogous to the R-tree's STR load).
  static BTree bulk_load(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& sorted,
      std::unique_ptr<Bte> storage = make_memory_bte(),
      std::size_t max_keys = kMaxKeys);

  /// Internal consistency check (tests): key order within nodes, child
  /// separation, leaf chain completeness. Returns false on any violation.
  [[nodiscard]] bool validate();

 private:
  struct Node {
    std::uint16_t count = 0;
    std::uint16_t is_leaf = 0;
    std::uint32_t next_leaf = kNil;  // leaf chain
    std::array<std::uint32_t, kMaxKeys> keys{};
    // Leaves: values[i] pairs with keys[i]. Internal: children[i] is the
    // subtree left of keys[i]; children[count] the rightmost subtree.
    std::array<std::uint32_t, kMaxKeys + 1> slots{};
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;

  [[nodiscard]] std::uint32_t alloc_node() {
    ++nodes_;
    return next_id_++;
  }

  void read_node(std::uint32_t id, Node& out) {
    bte_->read(std::uint64_t(id) * sizeof(Node),
               std::as_writable_bytes(std::span(&out, 1)));
  }
  void write_node(std::uint32_t id, const Node& n) {
    bte_->write(std::uint64_t(id) * sizeof(Node),
                std::as_bytes(std::span(&n, 1)));
  }

  /// Index of the child to descend into for `key` (keys equal to a
  /// separator live in the right subtree).
  [[nodiscard]] static std::size_t child_index(const Node& n,
                                               std::uint32_t key) {
    std::size_t i = 0;
    while (i < n.count && key >= n.keys[i]) ++i;
    return i;
  }

  /// Split the full child `ci` of `parent` (which has room). Returns the
  /// updated parent.
  void split_child(Node& parent, std::uint32_t parent_id, std::size_t ci);

  [[nodiscard]] bool validate_node(std::uint32_t id, std::uint32_t lo,
                                   std::uint32_t hi, bool has_lo,
                                   bool has_hi, std::size_t depth,
                                   std::size_t leaf_depth,
                                   std::size_t& leaves_seen);

  std::unique_ptr<Bte> bte_;
  std::size_t max_keys_;
  std::uint32_t root_ = 0;
  std::uint32_t next_id_ = 0;
  std::size_t size_ = 0;
  std::size_t nodes_ = 0;
  std::size_t height_ = 1;
};

}  // namespace lmas::em

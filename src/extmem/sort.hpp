#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "extmem/merge.hpp"
#include "extmem/stream.hpp"

namespace lmas::em {

struct SortStats {
  std::size_t items = 0;
  std::size_t runs_formed = 0;
  std::size_t initial_run_length = 0;  // records per run (last may be short)
  std::size_t merge_passes = 0;
  std::size_t max_fan_in = 0;
};

struct SortOptions {
  /// Memory available for run formation, in bytes (the model's M).
  std::size_t memory_bytes = 64 << 20;
  /// Maximum merge fan-in per pass (bounded by buffer space in the model).
  std::size_t max_fan_in = 64;
  /// Where scratch runs live.
  BteFactory scratch = memory_bte_factory();
};

/// External mergesort, the workhorse of I/O-efficient algorithms
/// (O((N/B) log_{M/B}(N/B)) block transfers): form memory-sized sorted
/// runs, then merge them with bounded fan-in until one run remains.
template <FixedSizeRecord T, typename Less = std::less<T>>
void sort_stream(Stream<T>& in, Stream<T>& out, const SortOptions& opt = {},
                 Less less = {}, SortStats* stats = nullptr) {
  SortStats local;
  SortStats& st = stats ? *stats : local;
  st = {};

  const std::size_t run_len =
      std::max<std::size_t>(1, opt.memory_bytes / sizeof(T));
  st.initial_run_length = run_len;

  // Pass 0: run formation.
  std::vector<std::unique_ptr<Stream<T>>> runs;
  std::vector<T> buf;
  buf.reserve(std::min<std::size_t>(run_len, std::size_t(1) << 22));
  in.rewind();
  while (!in.eof()) {
    buf.clear();
    while (buf.size() < run_len) {
      auto r = in.read();
      if (!r) break;
      buf.push_back(*r);
    }
    if (buf.empty()) break;
    std::sort(buf.begin(), buf.end(), less);
    st.items += buf.size();
    auto run = std::make_unique<Stream<T>>(opt.scratch());
    run->append(std::span<const T>(buf));
    run->rewind();
    runs.push_back(std::move(run));
  }
  st.runs_formed = runs.size();

  const std::size_t fan_in = std::max<std::size_t>(2, opt.max_fan_in);

  // Merge passes until at most fan_in runs remain; final merge goes to out.
  while (runs.size() > fan_in) {
    ++st.merge_passes;
    std::vector<std::unique_ptr<Stream<T>>> next;
    for (std::size_t i = 0; i < runs.size(); i += fan_in) {
      const std::size_t group =
          std::min(fan_in, runs.size() - i);
      st.max_fan_in = std::max(st.max_fan_in, group);
      std::vector<Stream<T>*> group_inputs;
      group_inputs.reserve(group);
      for (std::size_t j = 0; j < group; ++j) {
        runs[i + j]->rewind();
        group_inputs.push_back(runs[i + j].get());
      }
      auto merged = std::make_unique<Stream<T>>(opt.scratch());
      merge_streams<T, Less>(group_inputs, *merged, less);
      next.push_back(std::move(merged));
    }
    runs = std::move(next);
  }

  out.clear();
  if (runs.empty()) return;
  ++st.merge_passes;
  st.max_fan_in = std::max(st.max_fan_in, runs.size());
  std::vector<Stream<T>*> final_inputs;
  final_inputs.reserve(runs.size());
  for (auto& r : runs) {
    r->rewind();
    final_inputs.push_back(r.get());
  }
  merge_streams<T, Less>(final_inputs, out, less);
  out.rewind();
}

}  // namespace lmas::em

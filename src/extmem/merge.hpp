#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "extmem/stream.hpp"

namespace lmas::em {

/// Loser-tree (tournament) k-way merge. Comparisons per record are
/// ceil(log2 k) — the `n log(gamma)` term in the paper's work accounting.
/// Ties break toward the lower source index, making the merge stable
/// across sources.
template <FixedSizeRecord T, typename Less = std::less<T>>
class LoserTree {
 public:
  /// `sources` pull the next record from each input (nullopt = exhausted).
  using Source = std::function<std::optional<T>()>;

  explicit LoserTree(std::vector<Source> sources, Less less = {})
      : less_(less), k_(sources.size()), sources_(std::move(sources)) {
    assert(k_ >= 1);
    heads_.resize(k_);
    alive_ = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      heads_[i] = sources_[i]();
      if (heads_[i]) ++alive_;
    }
    // k can be small; a simple index heap is clearer than a classic
    // loser array and has identical comparison complexity.
    heap_.reserve(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      if (heads_[i]) heap_.push_back(i);
    }
    for (std::size_t i = heap_.size(); i-- > 0;) sift_down(i);
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Pop the globally smallest record and refill from its source.
  std::optional<T> next() {
    if (heap_.empty()) return std::nullopt;
    const std::size_t src = heap_.front();
    T out = *heads_[src];
    heads_[src] = sources_[src]();
    if (!heads_[src]) {
      heap_.front() = heap_.back();
      heap_.pop_back();
      --alive_;
    }
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  [[nodiscard]] std::size_t fan_in() const noexcept { return k_; }

 private:
  [[nodiscard]] bool src_less(std::size_t a, std::size_t b) const {
    if (less_(*heads_[a], *heads_[b])) return true;
    if (less_(*heads_[b], *heads_[a])) return false;
    return a < b;  // stability across sources
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && src_less(heap_[l], heap_[best])) best = l;
      if (r < n && src_less(heap_[r], heap_[best])) best = r;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  Less less_;
  std::size_t k_;
  std::vector<Source> sources_;
  std::vector<std::optional<T>> heads_;
  std::vector<std::size_t> heap_;  // indices of live sources, min at front
  std::size_t alive_ = 0;
};

/// Merge whole streams (each already sorted, cursors at the intended start)
/// into `out`. Returns the number of records written.
template <FixedSizeRecord T, typename Less = std::less<T>>
std::size_t merge_streams(std::vector<Stream<T>*> inputs, Stream<T>& out,
                          Less less = {}) {
  std::vector<typename LoserTree<T, Less>::Source> sources;
  sources.reserve(inputs.size());
  for (Stream<T>* s : inputs) {
    sources.push_back([s]() { return s->read(); });
  }
  LoserTree<T, Less> tree(std::move(sources), less);
  std::size_t n = 0;
  while (auto r = tree.next()) {
    out.push_back(*r);
    ++n;
  }
  return n;
}

}  // namespace lmas::em

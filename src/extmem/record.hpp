#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace lmas::em {

/// Streams carry fixed-size records: trivially copyable so they can move
/// through block buffers, channels and files as raw bytes (the TPIE model).
template <typename T>
concept FixedSizeRecord = std::is_trivially_copyable_v<T> &&
                          std::is_default_constructible_v<T>;

/// The evaluation's record: 128 bytes with a 4-byte key (Section 6).
struct Record128 {
  std::uint32_t key = 0;
  std::uint32_t id = 0;  // origin tag; lets tests verify permutations
  std::array<std::uint8_t, 120> payload{};

  friend bool operator<(const Record128& a, const Record128& b) noexcept {
    return a.key < b.key;
  }
  friend bool operator==(const Record128& a, const Record128& b) noexcept {
    return a.key == b.key && a.id == b.id && a.payload == b.payload;
  }
};
static_assert(sizeof(Record128) == 128);
static_assert(FixedSizeRecord<Record128>);

/// Compact record for simulations that only need keys and provenance.
struct KeyRecord {
  std::uint32_t key = 0;
  std::uint32_t id = 0;

  friend bool operator<(const KeyRecord& a, const KeyRecord& b) noexcept {
    return a.key < b.key;
  }
  friend bool operator==(const KeyRecord& a, const KeyRecord& b) noexcept =
      default;
};
static_assert(sizeof(KeyRecord) == 8);
static_assert(FixedSizeRecord<KeyRecord>);

/// Default key extractor: anything with a `.key` member.
struct KeyOf {
  template <typename T>
  auto operator()(const T& r) const noexcept {
    return r.key;
  }
};

}  // namespace lmas::em

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "extmem/stream.hpp"

namespace lmas::em {

/// alpha-way distribution: partition the input into `alpha` output streams
/// using `classify(record) -> [0, alpha)`. This is the paper's distribute
/// functor in toolkit form; comparisons per record are ceil(log2 alpha)
/// when the classifier is a splitter binary search.
template <FixedSizeRecord T, typename Classify>
std::vector<std::unique_ptr<Stream<T>>> distribute(
    Stream<T>& in, std::size_t alpha, Classify&& classify,
    const BteFactory& scratch = memory_bte_factory()) {
  std::vector<std::unique_ptr<Stream<T>>> buckets;
  buckets.reserve(alpha);
  for (std::size_t i = 0; i < alpha; ++i) {
    buckets.push_back(std::make_unique<Stream<T>>(scratch()));
  }
  while (auto r = in.read()) {
    const std::size_t b = classify(*r);
    buckets.at(b)->push_back(*r);
  }
  for (auto& b : buckets) b->rewind();
  return buckets;
}

/// Range classifier over keys: bucket i covers one equal-width slice of
/// [lo, hi); binary-search semantics, ceil(log2 alpha) compares per key.
template <typename Key>
class RangeClassifier {
 public:
  RangeClassifier(Key lo, Key hi, std::size_t alpha)
      : lo_(lo), width_((double(hi) - double(lo)) / double(alpha)),
        alpha_(alpha) {}

  template <typename R>
  std::size_t operator()(const R& r) const {
    const double off = (double(r.key) - double(lo_)) / width_;
    if (off <= 0) return 0;
    const auto b = std::size_t(off);
    return b >= alpha_ ? alpha_ - 1 : b;
  }

 private:
  Key lo_;
  double width_;
  std::size_t alpha_;
};

}  // namespace lmas::em

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace lmas::em {

/// I/O statistics every BTE keeps; the unit of accounting in the
/// I/O-complexity model is the logical block transfer.
struct BteStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
};

/// Block Transfer Engine: TPIE's pluggable abstraction over the underlying
/// storage system. Streams perform block-aligned transfers through this
/// interface, so swapping memory / file / simulated backends never touches
/// algorithm code.
class Bte {
 public:
  virtual ~Bte() = default;

  /// Logical length in bytes (high-water mark of writes).
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// Read exactly `out.size()` bytes at `offset`; reading past `size()` is
  /// a programming error and throws.
  virtual void read(std::uint64_t offset, std::span<std::byte> out) = 0;

  /// Write `in.size()` bytes at `offset`, extending the store if needed.
  virtual void write(std::uint64_t offset, std::span<const std::byte> in) = 0;

  /// Discard contents beyond `new_size`.
  virtual void truncate(std::uint64_t new_size) = 0;

  [[nodiscard]] const BteStats& stats() const noexcept { return stats_; }

 protected:
  BteStats stats_;
};

/// Heap-backed BTE: fast, used for tests and for the emulator (which
/// charges I/O time through the disk model instead of a real device).
std::unique_ptr<Bte> make_memory_bte();

/// POSIX-file-backed BTE for genuinely out-of-core runs.
std::unique_ptr<Bte> make_file_bte(const std::string& path,
                                   bool truncate_existing = true);

/// Anonymous temporary file BTE (unlinked at creation).
std::unique_ptr<Bte> make_temp_file_bte();

}  // namespace lmas::em

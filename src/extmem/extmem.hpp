#pragma once

/// Umbrella header for the TPIE-like external-memory toolkit.
#include "extmem/btree.hpp"
#include "extmem/bte.hpp"
#include "extmem/distribute.hpp"
#include "extmem/distribution_sort.hpp"
#include "extmem/merge.hpp"
#include "extmem/pqueue.hpp"
#include "extmem/record.hpp"
#include "extmem/scan.hpp"
#include "extmem/sort.hpp"
#include "extmem/stream.hpp"

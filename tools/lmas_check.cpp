// Conformance driver: golden-run regression and property suites.
//
//   lmas_check golden              compare fresh runs against the pinned file
//   lmas_check regolden [path]     re-run all cases and rewrite the pinned file
//   lmas_check property [options]  run property suites
//       --suite NAME               one suite instead of all
//       --cases N                  cases per suite (default: suite default)
//       --seed S                   base seed (default 0)
//   lmas_check list                list suites and golden cases
//
// Reproducing a CI failure: every falsified property prints a repro line of
// the form
//   LMAS_CHECK_SEED=0x... LMAS_CHECK_SIZE=... lmas_check property --suite S
// which re-runs exactly that one shrunk case. See EXPERIMENTS.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/golden.hpp"
#include "check/suites.hpp"
#include "obs/report.hpp"
#include "par/executor.hpp"

namespace {

using namespace lmas;

int usage() {
  std::fprintf(stderr,
               "usage: lmas_check golden\n"
               "       lmas_check regolden [path]\n"
               "       lmas_check property [--suite NAME] [--cases N] "
               "[--seed S]\n"
               "       lmas_check list\n");
  return 2;
}

int cmd_golden() {
  const std::string path = check::default_golden_path();
  const auto pinned = check::load_goldens(path);
  if (!pinned) {
    std::fprintf(stderr,
                 "lmas_check: cannot load pinned goldens from %s\n"
                 "  (generate them with: lmas_check regolden)\n",
                 path.c_str());
    return 1;
  }
  // Golden cases are independent engines, so they sweep in parallel
  // (LMAS_JOBS, like the benches); map_ordered keeps the pinned order.
  const auto& cases = check::golden_cases();
  par::Executor ex;
  const std::vector<check::GoldenResult> fresh =
      par::map_ordered<check::GoldenResult>(ex, cases.size(), [&](
          std::size_t i) { return check::run_golden_case(cases[i]); });
  const auto mismatches = check::compare_goldens(*pinned, fresh);
  if (mismatches.empty()) {
    std::printf("golden: %zu cases conformant (%s)\n", fresh.size(),
                path.c_str());
    return 0;
  }
  for (const auto& m : mismatches) {
    std::fprintf(stderr, "golden MISMATCH %s: %s\n", m.name.c_str(),
                 m.detail.c_str());
  }
  std::fprintf(stderr,
               "\n%zu of %zu golden cases drifted. If this change is "
               "intentional, regenerate and commit the pinned file:\n"
               "  lmas_check regolden   (or: make regolden)\n",
               mismatches.size(), fresh.size());
  return 1;
}

int cmd_regolden(const char* path_arg) {
  const std::string path =
      path_arg ? std::string(path_arg) : check::default_golden_path();
  std::vector<check::GoldenResult> fresh;
  for (const auto& c : check::golden_cases()) {
    fresh.push_back(check::run_golden_case(c));
    const auto& r = fresh.back();
    std::printf("  %-24s digest=%s events=%llu ok=%d\n", r.name.c_str(),
                obs::digest_to_string(r.digest).c_str(),
                static_cast<unsigned long long>(r.sim_events), int(r.ok));
    if (!r.ok) {
      std::fprintf(stderr,
                   "lmas_check: refusing to pin a failing run (%s)\n",
                   r.name.c_str());
      return 1;
    }
  }
  if (!check::write_goldens(path, fresh)) {
    std::fprintf(stderr, "lmas_check: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("regolden: wrote %zu cases to %s\n", fresh.size(),
              path.c_str());
  return 0;
}

int cmd_property(int argc, char** argv) {
  const char* only = nullptr;
  std::size_t cases = 0;  // 0 = suite default
  std::uint64_t seed = 0;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--suite") && i + 1 < argc) {
      only = argv[++i];
    } else if (!std::strcmp(argv[i], "--cases") && i + 1 < argc) {
      cases = std::strtoull(argv[++i], nullptr, 0);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      return usage();
    }
  }
  // forall() itself honors LMAS_CHECK_CASES (it wins over --cases, like
  // the other LMAS_CHECK_* repro overrides); mirror that here so the
  // printed per-suite count matches what actually runs.
  if (const char* e = std::getenv("LMAS_CHECK_CASES")) {
    cases = std::strtoull(e, nullptr, 0);
  }
  bool matched = false;
  for (const auto& s : check::all_suites()) {
    if (only && s.name != only) continue;
    matched = true;
    const std::size_t n = cases ? cases : s.default_cases;
    if (std::getenv("LMAS_CHECK_SEED")) {
      std::printf("property %-14s pinned case ... ",
                  std::string(s.name).c_str());
    } else {
      std::printf("property %-14s %zu cases ... ",
                  std::string(s.name).c_str(), n);
    }
    std::fflush(stdout);
    if (auto failure = s.fn(n, seed)) {
      std::printf("FAIL\n");
      std::fprintf(stderr, "%s\n", failure->describe().c_str());
      return 1;
    }
    std::printf("ok\n");
  }
  if (!matched) {
    std::fprintf(stderr, "lmas_check: unknown suite '%s' (see: list)\n",
                 only ? only : "");
    return 2;
  }
  return 0;
}

int cmd_list() {
  std::printf("property suites:\n");
  for (const auto& s : check::all_suites()) {
    std::printf("  %-14s (default %zu cases)\n",
                std::string(s.name).c_str(), s.default_cases);
  }
  std::printf("golden cases (pinned in %s):\n",
              check::default_golden_path().c_str());
  for (const auto& c : check::golden_cases()) {
    std::printf("  %s\n", c.name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "golden") return cmd_golden();
  if (cmd == "regolden") return cmd_regolden(argc > 2 ? argv[2] : nullptr);
  if (cmd == "property") return cmd_property(argc - 2, argv + 2);
  if (cmd == "list") return cmd_list();
  return usage();
}

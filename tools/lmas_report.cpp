/// lmas_report — render the telemetry blocks of a BENCH_*.json artifact
/// (schema lmas-bench-v1) as aligned ASCII: latency-quantile tables from
/// `histograms` blocks and per-probe sparklines from `time_series`
/// blocks. Reads artifacts produced with DsmSortConfig::telemetry
/// enabled (fig9_speedup's detailed cell, every fig10_adapt cell).
///
///   lmas_report [quantiles|series|tenants|racks|placer|all] BENCH_file.json
///
/// Blocks are found at the artifact root (fig9 style) and inside each
/// `results[]` entry (sweep style, labeled by the entry's `cell` or
/// `name` key). `tenants` groups the job-completion histograms of a
/// multi-tenant artifact (fig_tenancy) by tenant label: one row per
/// `dsm.job_seconds.<tenant>` block plus the aggregate. `racks` renders
/// the per-rack balance table of a hierarchical-topology artifact
/// (fig_scale): one row per `rack.queue.<r>` histogram — the
/// distribution of per-ASU mean queue length inside rack r — plus the
/// machine-wide aggregate. `placer` renders the load manager's decision
/// journal of a managed artifact (fig10_adapt, fig_tenancy): one row per
/// planned migration — tick time, client, instance, route, pre-copy vs
/// stop-copy, declared bytes, and the cost model's estimated stall and
/// expected gain.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace obs = lmas::obs;

namespace {

struct Block {
  std::string label;      // "" for the artifact root
  const obs::Json* json;  // the histograms or time_series object
};

/// Collect a named block from the root and from every results[] entry.
std::vector<Block> find_blocks(const obs::Json& doc, const char* key) {
  std::vector<Block> out;
  if (const obs::Json* b = doc.find(key); b != nullptr && b->is_object()) {
    out.push_back({"", b});
  }
  if (const obs::Json* results = doc.find("results");
      results != nullptr && results->is_array()) {
    for (const obs::Json& entry : results->items()) {
      const obs::Json* b = entry.find(key);
      if (b == nullptr || !b->is_object()) continue;
      const obs::Json* cell = entry.find("cell");
      if (cell == nullptr) cell = entry.find("name");
      out.push_back({cell != nullptr ? cell->as_string() : "results[]", b});
    }
  }
  return out;
}

void print_quantiles(const Block& blk) {
  if (!blk.label.empty()) std::printf("\n[%s]\n", blk.label.c_str());
  std::size_t w = std::strlen("metric");
  for (const auto& [name, h] : blk.json->members()) {
    w = std::max(w, name.size());
  }
  std::printf("%-*s %10s %12s %12s %12s %12s %12s\n", int(w), "metric",
              "count", "mean(s)", "p50(s)", "p90(s)", "p99(s)", "max(s)");
  for (const auto& [name, h] : blk.json->members()) {
    const auto field = [&h = h](const char* k) {
      const obs::Json* v = h.find(k);
      return v != nullptr ? v->as_double() : 0.0;
    };
    std::printf("%-*s %10lld %12.6f %12.6f %12.6f %12.6f %12.6f\n", int(w),
                name.c_str(), static_cast<long long>(field("count")),
                field("mean"), field("p50"), field("p90"), field("p99"),
                field("max"));
  }
}

/// Per-tenant completion-time table: the `dsm.job_seconds.<tenant>`
/// histograms of one cell grouped by tenant label, the bare
/// `dsm.job_seconds` block as the (all) row. Cells without per-tenant
/// blocks (single-tenant artifacts) print nothing.
bool print_tenant_quantiles(const Block& blk) {
  static const std::string kAggregate = "dsm.job_seconds";
  static const std::string kPrefix = kAggregate + ".";
  std::vector<std::pair<std::string, const obs::Json*>> rows;
  for (const auto& [name, h] : blk.json->members()) {
    if (name.compare(0, kPrefix.size(), kPrefix) == 0) {
      rows.emplace_back(name.substr(kPrefix.size()), &h);
    }
  }
  if (rows.empty()) return false;
  if (const obs::Json* agg = blk.json->find(kAggregate); agg != nullptr) {
    rows.emplace_back("(all)", agg);
  }
  if (!blk.label.empty()) std::printf("\n[%s]\n", blk.label.c_str());
  std::size_t w = std::strlen("tenant");
  for (const auto& [name, h] : rows) w = std::max(w, name.size());
  std::printf("%-*s %10s %12s %12s %12s %12s %12s\n", int(w), "tenant",
              "jobs", "mean(s)", "p50(s)", "p90(s)", "p99(s)", "max(s)");
  for (const auto& [name, h] : rows) {
    const auto field = [h = h](const char* k) {
      const obs::Json* v = h->find(k);
      return v != nullptr ? v->as_double() : 0.0;
    };
    std::printf("%-*s %10lld %12.6f %12.6f %12.6f %12.6f %12.6f\n", int(w),
                name.c_str(), static_cast<long long>(field("count")),
                field("mean"), field("p50"), field("p90"), field("p99"),
                field("max"));
  }
  return true;
}

/// Per-rack balance table: the `rack.queue.<r>` histograms of one cell —
/// each the distribution of per-ASU mean queue length inside rack r —
/// with the bare `rack.queue` block as the (all) row. Flat-topology
/// artifacts carry no such keys and print nothing.
bool print_rack_quantiles(const Block& blk) {
  static const std::string kAggregate = "rack.queue";
  static const std::string kPrefix = kAggregate + ".";
  std::vector<std::pair<std::string, const obs::Json*>> rows;
  for (const auto& [name, h] : blk.json->members()) {
    if (name.compare(0, kPrefix.size(), kPrefix) == 0) {
      rows.emplace_back(name.substr(kPrefix.size()), &h);
    }
  }
  if (rows.empty()) return false;
  // Rack keys are numeric suffixes; order the table by rack id, not by
  // the registry's lexicographic key order ("10" before "2").
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.first.size() != b.first.size()) {
      return a.first.size() < b.first.size();
    }
    return a.first < b.first;
  });
  if (const obs::Json* agg = blk.json->find(kAggregate); agg != nullptr) {
    rows.emplace_back("(all)", agg);
  }
  if (!blk.label.empty()) std::printf("\n[%s]\n", blk.label.c_str());
  std::size_t w = std::strlen("rack");
  for (const auto& [name, h] : rows) w = std::max(w, name.size());
  std::printf("%-*s %10s %12s %12s %12s %12s %12s\n", int(w), "rack",
              "asus", "mean(q)", "p50(q)", "p90(q)", "p99(q)", "max(q)");
  for (const auto& [name, h] : rows) {
    const auto field = [h = h](const char* k) {
      const obs::Json* v = h->find(k);
      return v != nullptr ? v->as_double() : 0.0;
    };
    std::printf("%-*s %10lld %12.4f %12.4f %12.4f %12.4f %12.4f\n", int(w),
                name.c_str(), static_cast<long long>(field("count")),
                field("mean"), field("p50"), field("p90"), field("p99"),
                field("max"));
  }
  return true;
}

/// Collect the `placer` decision arrays (find_blocks only surfaces
/// objects; the journal is an array of decision records, so it needs its
/// own finder). A managed artifact carries the block even when no
/// migration was planned — presence is config-driven — so empty arrays
/// are collected too and render as a zero-row table.
std::vector<Block> find_placer_blocks(const obs::Json& doc) {
  std::vector<Block> out;
  if (const obs::Json* b = doc.find("placer"); b != nullptr && b->is_array()) {
    out.push_back({"", b});
  }
  if (const obs::Json* results = doc.find("results");
      results != nullptr && results->is_array()) {
    for (const obs::Json& entry : results->items()) {
      const obs::Json* b = entry.find("placer");
      if (b == nullptr || !b->is_array()) continue;
      const obs::Json* cell = entry.find("cell");
      if (cell == nullptr) cell = entry.find("name");
      out.push_back({cell != nullptr ? cell->as_string() : "results[]", b});
    }
  }
  return out;
}

/// Decision-journal table of one managed cell: what the budgeted placer
/// planned, when, and at what priced cost.
void print_placer(const Block& blk) {
  if (!blk.label.empty()) std::printf("\n[%s]\n", blk.label.c_str());
  if (blk.json->size() == 0) {
    std::printf("(managed, no migrations planned)\n");
    return;
  }
  std::printf("%10s %-12s %8s %-22s %-9s %12s %10s %10s\n", "t(s)",
              "client", "instance", "route", "mode", "bytes", "stall(s)",
              "gain(s)");
  for (const obs::Json& d : blk.json->items()) {
    const auto str = [&d](const char* k) {
      const obs::Json* v = d.find(k);
      return v != nullptr ? v->as_string() : std::string{};
    };
    const auto num = [&d](const char* k) {
      const obs::Json* v = d.find(k);
      return v != nullptr ? v->as_double() : 0.0;
    };
    const std::string route = str("from") + " -> " + str("to");
    const std::string client = str("client");
    std::printf("%10.4f %-12s %8lld %-22s %-9s %12lld %10.5f %10.4f\n",
                num("time"), client.empty() ? "-" : client.c_str(),
                static_cast<long long>(num("instance")), route.c_str(),
                str("mode").c_str(), static_cast<long long>(num("bytes")),
                num("est_stall_seconds"), num("gain_seconds"));
  }
}

/// One probe as a fixed-width sparkline: samples are bucketed into 64
/// columns (mean per column) and scaled to the probe's own max.
void print_series_line(const std::string& name, std::size_t name_w,
                       const std::vector<double>& v) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kCols = 64;
  double lo = 0, hi = 0;
  for (const double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  std::string line;
  const std::size_t cols = std::min(kCols, v.size());
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t b0 = c * v.size() / cols;
    const std::size_t b1 = std::max(b0 + 1, (c + 1) * v.size() / cols);
    double acc = 0;
    for (std::size_t i = b0; i < b1; ++i) acc += v[i];
    const double mean = acc / double(b1 - b0);
    const double t = hi > 0 ? mean / hi : 0.0;
    const int r = int(t * (sizeof(kRamp) - 2) + 0.5);
    line.push_back(kRamp[std::clamp(r, 0, int(sizeof(kRamp) - 2))]);
  }
  std::printf("%-*s |%-*s| min %.3f max %.3f\n", int(name_w), name.c_str(),
              int(kCols), line.c_str(), lo, hi);
}

void print_series(const Block& blk) {
  if (!blk.label.empty()) std::printf("\n[%s]\n", blk.label.c_str());
  const obs::Json* times = blk.json->find("times");
  const obs::Json* series = blk.json->find("series");
  const obs::Json* period = blk.json->find("period");
  if (series == nullptr || !series->is_object()) return;
  if (times != nullptr && times->size() > 0 && period != nullptr) {
    std::printf("%zu samples, period %.4fs, t in [%.3f, %.3f]\n",
                times->size(), period->as_double(),
                times->at(std::size_t(0)).as_double(),
                times->at(times->size() - 1).as_double());
  }
  std::size_t w = 0;
  for (const auto& [name, s] : series->members()) w = std::max(w, name.size());
  for (const auto& [name, s] : series->members()) {
    std::vector<double> v;
    v.reserve(s.size());
    for (const obs::Json& x : s.items()) v.push_back(x.as_double());
    if (!v.empty()) print_series_line(name, w, v);
  }
}

int usage() {
  std::fprintf(stderr, "usage: lmas_report [quantiles|series|tenants|racks|"
                       "placer|all] BENCH_file.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "all";
  const char* path = nullptr;
  if (argc == 2) {
    path = argv[1];
  } else if (argc == 3) {
    mode = argv[1];
    path = argv[2];
  } else {
    return usage();
  }
  if (mode != "quantiles" && mode != "series" && mode != "tenants" &&
      mode != "racks" && mode != "placer" && mode != "all") {
    return usage();
  }

  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "lmas_report: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const auto doc = obs::Json::parse(ss.str());
  if (!doc.has_value()) {
    std::fprintf(stderr, "lmas_report: %s is not valid JSON\n", path);
    return 1;
  }

  if (const obs::Json* name = doc->find("bench"); name != nullptr) {
    std::printf("# %s (%s)\n", name->as_string().c_str(), path);
  }

  bool any = false;
  if (mode == "quantiles" || mode == "all") {
    const auto blocks = find_blocks(*doc, "histograms");
    if (!blocks.empty()) std::printf("\n== latency quantiles ==\n");
    for (const Block& b : blocks) {
      print_quantiles(b);
      any = true;
    }
  }
  if (mode == "tenants" || mode == "all") {
    const auto blocks = find_blocks(*doc, "histograms");
    bool header = false;
    for (const Block& b : blocks) {
      if (!header) {
        bool has = false;
        for (const auto& [name, h] : b.json->members()) {
          has = has || name.rfind("dsm.job_seconds.", 0) == 0;
        }
        if (!has) continue;
        std::printf("\n== per-tenant job completion ==\n");
        header = true;
      }
      any = print_tenant_quantiles(b) || any;
    }
  }
  if (mode == "racks" || mode == "all") {
    const auto blocks = find_blocks(*doc, "histograms");
    bool header = false;
    for (const Block& b : blocks) {
      if (!header) {
        bool has = false;
        for (const auto& [name, h] : b.json->members()) {
          has = has || name.rfind("rack.queue.", 0) == 0;
        }
        if (!has) continue;
        std::printf("\n== per-rack balance ==\n");
        header = true;
      }
      any = print_rack_quantiles(b) || any;
    }
  }
  if (mode == "placer" || mode == "all") {
    const auto blocks = find_placer_blocks(*doc);
    if (!blocks.empty()) std::printf("\n== placer decisions ==\n");
    for (const Block& b : blocks) {
      print_placer(b);
      any = true;
    }
  }
  if (mode == "series" || mode == "all") {
    const auto blocks = find_blocks(*doc, "time_series");
    if (!blocks.empty()) std::printf("\n== time series ==\n");
    for (const Block& b : blocks) {
      print_series(b);
      any = true;
    }
  }
  if (!any) {
    std::printf("# no telemetry blocks in %s (run the bench with "
                "DsmSortConfig::telemetry enabled)\n", path);
  }
  return 0;
}
